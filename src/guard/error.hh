/**
 * @file
 * Typed, recoverable errors for untrusted-input boundaries.
 *
 * The simulator historically treated every bad input as a programmer
 * error: flexsim_assert / fatal() abort the process.  That is the
 * right contract for internal invariants, but the boundaries that
 * ingest *external* data — workload/LayerSpec descriptions, flexcc
 * program text and binaries, fault/traffic specifications, serve
 * request admission — must instead return a typed error the caller
 * can report, count, or route around without dying.
 *
 * guard::Error is the taxonomy (category + site + message) and
 * guard::Expected<T> the carrier: a boundary either yields its value
 * or an Error, never a crash.  The conventions:
 *
 *  - functions named "try..." or "check..." return Expected and
 *    never abort on bad input;
 *  - their legacy fatal()-ing counterparts remain as thin wrappers
 *    for internal callers that already validated their input;
 *  - flexsim_assert stays reserved for genuine internal invariants
 *    ("the simulator itself is broken"), not for input validation.
 *
 * GuardException bridges deep call stacks that cannot thread an
 * Expected return through (the cycle simulators' watchdog aborts):
 * guard::invoke() converts it back into an Expected at the boundary.
 */

#ifndef FLEXSIM_GUARD_ERROR_HH
#define FLEXSIM_GUARD_ERROR_HH

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

#include "common/logging.hh"

namespace flexsim {
namespace guard {

/** What kind of failure a boundary rejected. */
enum class Category
{
    /** A value is of the right shape but semantically invalid
     * (negative dimension, zero rate, factor out of range). */
    InvalidArgument,
    /** Text or binary input that does not parse (bad mnemonic,
     * malformed clause, truncated file). */
    Parse,
    /** A structurally valid value outside the configured bounds
     * (PE coordinate beyond the array, workload index past the
     * table). */
    OutOfRange,
    /** Input the implementation recognizes but does not support
     * (unknown architecture, unsupported binary version). */
    Unsupported,
    /** Host I/O failed (unreadable or unwritable file). */
    Io,
    /** A runtime guard tripped: watchdog wall-clock or cycle budget
     * exceeded, or the run was cancelled. */
    Timeout,
    /** An internal invariant observed at a guarded boundary (kept
     * distinct so accounting can tell "bad input" from "bug"). */
    Internal,
};

/** Stable lower-case name, e.g. "parse" or "timeout". */
const char *categoryName(Category category);

/** One typed, recoverable error from a guarded boundary. */
struct Error
{
    Category category = Category::InvalidArgument;
    /** The boundary that rejected the input, e.g. "isa.assemble". */
    std::string site;
    /** Human-readable diagnostic (no trailing newline). */
    std::string message;

    /** "site: message [category]" — the canonical rendering. */
    std::string str() const;

    bool operator==(const Error &) const = default;
};

/** Build an Error by streaming the message parts together. */
template <typename... Args>
Error
makeError(Category category, std::string site, Args &&...parts)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(parts));
    return Error{category, std::move(site), oss.str()};
}

/**
 * Either a value or a typed Error.  A deliberately small subset of
 * std::expected (the toolchain baseline is C++20): ok(), value(),
 * error(), and valueOr() cover every boundary in the tree.
 *
 * Accessing value() on an error (or error() on a value) is itself an
 * internal invariant violation and asserts — a caller must branch on
 * ok() first.
 */
template <typename T>
class [[nodiscard]] Expected
{
  public:
    Expected(T value) : state_(std::move(value)) {}
    Expected(Error error) : state_(std::move(error)) {}

    bool ok() const { return std::holds_alternative<T>(state_); }
    explicit operator bool() const { return ok(); }

    T &
    value()
    {
        flexsim_assert(ok(), "value() on an error Expected");
        return std::get<T>(state_);
    }

    const T &
    value() const
    {
        flexsim_assert(ok(), "value() on an error Expected");
        return std::get<T>(state_);
    }

    const Error &
    error() const
    {
        flexsim_assert(!ok(), "error() on a value Expected");
        return std::get<Error>(state_);
    }

    T
    valueOr(T fallback) const
    {
        return ok() ? std::get<T>(state_) : std::move(fallback);
    }

  private:
    std::variant<T, Error> state_;
};

/** The no-value case: a validation that either passes or explains. */
template <>
class [[nodiscard]] Expected<void>
{
  public:
    Expected() = default;
    Expected(Error error) : error_(std::move(error)), failed_(true) {}

    bool ok() const { return !failed_; }
    explicit operator bool() const { return ok(); }

    const Error &
    error() const
    {
        flexsim_assert(failed_, "error() on a value Expected");
        return error_;
    }

  private:
    Error error_{};
    bool failed_ = false;
};

/** Success value for Expected<void> returns. */
inline Expected<void>
ok()
{
    return Expected<void>{};
}

/**
 * Carrier for guard errors across stacks that return values by
 * reference (the cycle simulators).  Thrown when a watchdog trips
 * mid-layer; guard::invoke() turns it back into an Expected.
 */
class GuardException : public std::runtime_error
{
  public:
    explicit GuardException(Error error)
        : std::runtime_error(error.str()), error_(std::move(error))
    {
    }

    const Error &error() const { return error_; }

  private:
    Error error_;
};

/**
 * Run @p fn and capture a thrown GuardException as a typed error:
 * the bridge from exception-style guards (watchdogs deep inside a
 * simulator) back to Expected-style boundaries.
 *
 * Only GuardException is translated; any other exception still
 * propagates, because it is a bug, not a guarded failure.
 */
template <typename Fn>
auto
invoke(Fn &&fn) -> Expected<decltype(fn())>
{
    using R = decltype(fn());
    try {
        if constexpr (std::is_void_v<R>) {
            fn();
            return ok();
        } else {
            return Expected<R>(fn());
        }
    } catch (const GuardException &e) {
        return e.error();
    }
}

} // namespace guard
} // namespace flexsim

#endif // FLEXSIM_GUARD_ERROR_HH
