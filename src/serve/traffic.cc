#include "serve/traffic.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/strutil.hh"

namespace flexsim {
namespace serve {

std::optional<TrafficModel>
parseTrafficModel(const std::string &name)
{
    const std::string lower = toLower(name);
    if (lower == "poisson")
        return TrafficModel::Poisson;
    if (lower == "bursty")
        return TrafficModel::Bursty;
    if (lower == "replay")
        return TrafficModel::Replay;
    return std::nullopt;
}

const char *
trafficModelName(TrafficModel model)
{
    switch (model) {
      case TrafficModel::Poisson:
        return "poisson";
      case TrafficModel::Bursty:
        return "bursty";
      case TrafficModel::Replay:
        return "replay";
    }
    return "?";
}

namespace {

/** Exponential inter-arrival draw at @p rate_per_ns. */
TimeNs
nextGap(Rng &rng, double rate_per_ns)
{
    // 1 - uniformReal() is in (0, 1]; log() stays finite.
    const double u = 1.0 - rng.uniformReal();
    const double gap = -std::log(u) / rate_per_ns;
    return static_cast<TimeNs>(std::llround(std::max(gap, 1.0)));
}

/** The instantaneous rate (per ns) of the bursty process at @p now. */
double
burstyRate(const TrafficConfig &config, TimeNs now)
{
    const double mean_per_ns = config.rps / 1e9;
    const TimeNs phase = now % config.burstPeriodNs;
    const TimeNs on_ns = static_cast<TimeNs>(
        config.burstFraction *
        static_cast<double>(config.burstPeriodNs));
    const bool bursting = phase < on_ns;
    // Keep the long-run mean at rps: the lull rate compensates for
    // the burst overshoot (clamped at a trickle when factor/fraction
    // would drive it negative).
    const double on_rate = mean_per_ns * config.burstFactor;
    const double off_share =
        1.0 - config.burstFraction * config.burstFactor;
    const double off_rate = std::max(
        mean_per_ns * off_share / (1.0 - config.burstFraction),
        mean_per_ns * 1e-3);
    return bursting ? on_rate : off_rate;
}

} // namespace

guard::Expected<void>
TrafficConfig::check() const
{
    using guard::Category;
    const auto reject = [](Category category, const auto &...parts) {
        return guard::makeError(category, "serve.traffic", parts...);
    };
    if (!(rps > 0.0)) {
        return reject(Category::InvalidArgument,
                      "traffic needs a positive rate, got ", rps);
    }
    if (durationNs == 0)
        return reject(Category::InvalidArgument,
                      "traffic needs a positive duration");
    if (numWorkloads < 1) {
        return reject(Category::InvalidArgument,
                      "traffic needs at least one workload, got ",
                      numWorkloads);
    }
    if (model == TrafficModel::Bursty) {
        if (!(burstFraction > 0.0 && burstFraction < 1.0)) {
            return reject(Category::InvalidArgument,
                          "burst fraction ", burstFraction,
                          " outside (0, 1)");
        }
        if (burstPeriodNs == 0) {
            return reject(Category::InvalidArgument,
                          "burst period must be positive");
        }
        if (!(burstFactor >= 1.0)) {
            return reject(Category::InvalidArgument, "burst factor ",
                          burstFactor, " must be >= 1");
        }
    }
    if (!(poisonRate >= 0.0 && poisonRate <= 1.0)) {
        return reject(Category::InvalidArgument, "poison rate ",
                      poisonRate, " outside [0, 1]");
    }
    return guard::ok();
}

std::vector<InferenceRequest>
generateTraffic(const TrafficConfig &config)
{
    if (auto valid = config.check(); !valid)
        fatal(valid.error().str());

    Rng rng(config.seed);
    std::vector<InferenceRequest> requests;
    auto draw_workload = [&] {
        const int workload =
            config.numWorkloads == 1
                ? 0
                : static_cast<int>(rng.uniformInt(
                      0, config.numWorkloads - 1));
        // The poison draw only happens at a non-zero rate, so a
        // poison-free stream consumes exactly the historical draw
        // sequence and stays bit-identical.
        if (config.poisonRate > 0.0 &&
            rng.uniformReal() < config.poisonRate) {
            return kPoisonWorkload;
        }
        return workload;
    };

    if (config.model == TrafficModel::Replay) {
        for (TimeNs offset : config.replayNs) {
            if (offset >= config.durationNs)
                continue;
            InferenceRequest request;
            request.workload = draw_workload();
            request.arrivalNs = offset;
            requests.push_back(request);
        }
        std::stable_sort(requests.begin(), requests.end(),
                         [](const auto &a, const auto &b) {
                             return a.arrivalNs < b.arrivalNs;
                         });
    } else {
        TimeNs now = 0;
        while (true) {
            const double rate =
                config.model == TrafficModel::Bursty
                    ? burstyRate(config, now)
                    : config.rps / 1e9;
            now += nextGap(rng, rate);
            if (now >= config.durationNs)
                break;
            InferenceRequest request;
            request.workload = draw_workload();
            request.arrivalNs = now;
            requests.push_back(request);
        }
    }

    for (std::size_t i = 0; i < requests.size(); ++i)
        requests[i].id = i;
    return requests;
}

std::vector<TimeNs>
parseReplayTrace(const std::string &text)
{
    auto offsets = tryParseReplayTrace(text);
    if (!offsets)
        fatal(offsets.error().str());
    return offsets.value();
}

guard::Expected<std::vector<TimeNs>>
tryParseReplayTrace(const std::string &text)
{
    std::vector<TimeNs> offsets;
    int line_no = 0;
    for (const std::string &line : split(text, '\n')) {
        ++line_no;
        const std::string body = trim(split(line, '#').front());
        if (body.empty())
            continue;
        double micros = 0.0;
        try {
            std::size_t used = 0;
            micros = std::stod(body, &used);
            if (used != body.size())
                throw std::invalid_argument(body);
        } catch (...) {
            return guard::makeError(guard::Category::Parse,
                                    "serve.replay", "trace line ",
                                    line_no, ": bad arrival offset '",
                                    body, "'");
        }
        if (micros < 0.0 || !std::isfinite(micros)) {
            return guard::makeError(
                guard::Category::InvalidArgument, "serve.replay",
                "trace line ", line_no,
                ": arrival offset must be finite and non-negative");
        }
        offsets.push_back(
            static_cast<TimeNs>(std::llround(micros * 1e3)));
    }
    return offsets;
}

} // namespace serve
} // namespace flexsim
