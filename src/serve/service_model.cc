#include "serve/service_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace flexsim {
namespace serve {

ServiceTimeModel::ServiceTimeModel(const AcceleratorModel &model,
                                   std::vector<NetworkSpec> workloads,
                                   double dram_words_per_cycle,
                                   double freq_ghz)
    : archName_(model.name()), wordsPerCycle_(dram_words_per_cycle),
      freqGhz_(freq_ghz)
{
    flexsim_assert(!workloads.empty(),
                   "service model needs at least one workload");
    flexsim_assert(dram_words_per_cycle > 0.0,
                   "DRAM bandwidth must be positive");
    flexsim_assert(freq_ghz > 0.0, "clock frequency must be positive");
    workloads_.reserve(workloads.size());
    for (const NetworkSpec &net : workloads) {
        WorkloadEntry entry;
        entry.name = net.name;
        entry.frameTimings.reserve(net.stages.size());
        entry.layers.reserve(net.stages.size());
        for (const NetworkSpec::Stage &stage : net.stages) {
            LayerEntry layer;
            layer.result = model.runLayer(stage.conv);
            layer.kernelWords = stage.conv.kernelWords();
            entry.frameTimings.push_back(
                overlapTiming(layer.result, wordsPerCycle_));
            entry.layers.push_back(std::move(layer));
        }
        workloads_.push_back(std::move(entry));
    }
}

const ServiceTimeModel::WorkloadEntry &
ServiceTimeModel::entry(int workload) const
{
    flexsim_assert(workload >= 0 &&
                       static_cast<std::size_t>(workload) <
                           workloads_.size(),
                   "workload index ", workload, " out of range");
    return workloads_[static_cast<std::size_t>(workload)];
}

const std::string &
ServiceTimeModel::workloadName(int workload) const
{
    return entry(workload).name;
}

TimeNs
ServiceTimeModel::batchServiceNs(int workload, unsigned batch) const
{
    flexsim_assert(batch > 0, "batch must hold at least one request");
    Cycle total = 0;
    for (const LayerEntry &layer : entry(workload).layers) {
        total += batchOverlapTiming(layer.result, layer.kernelWords,
                                    batch, wordsPerCycle_)
                     .totalCycles;
    }
    return static_cast<TimeNs>(
        std::ceil(static_cast<double>(total) / freqGhz_));
}

const std::vector<SystemTiming> &
ServiceTimeModel::layerTimings(int workload) const
{
    return entry(workload).frameTimings;
}

} // namespace serve
} // namespace flexsim
