#include "serve/worker_pool.hh"

#include <algorithm>

namespace flexsim {
namespace serve {

WorkerPool::WorkerPool(unsigned num_workers)
{
    const unsigned n = std::max(1u, num_workers);
    threads_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        threads_.emplace_back(
            [this](std::stop_token stop) { workerLoop(stop); });
    }
}

WorkerPool::~WorkerPool()
{
    for (std::jthread &thread : threads_)
        thread.request_stop();
    cv_.notify_all();
    // jthread joins on destruction.
}

void
WorkerPool::submit(Job job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        jobs_.push_back(std::move(job));
    }
    cv_.notify_one();
}

void
WorkerPool::workerLoop(std::stop_token stop)
{
    while (true) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, stop, [this] { return !jobs_.empty(); });
            if (jobs_.empty())
                return; // stop requested with an empty queue
            job = std::move(jobs_.front());
            jobs_.pop_front();
        }
        job();
    }
}

} // namespace serve
} // namespace flexsim
