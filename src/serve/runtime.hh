/**
 * @file
 * The inference-serving runtime.
 *
 * Requests flow arrival -> admission -> batch -> dispatch -> stats:
 * a bounded admission queue sheds overflow, a batcher groups
 * consecutive same-workload requests (up to a maximum batch, waiting
 * at most a batching window), and a pool of simulated accelerator
 * instances serves batches with roofline-derived service times.
 *
 * Execution is a virtual-time event loop: the coordinator advances
 * time over arrival / completion / batch-window / fault / retry /
 * deadline events, and hands every batch evaluation to a WorkerPool
 * of real threads.  Because service times are pure functions and the
 * coordinator joins each dispatch round in submission order before
 * advancing time, the run is deterministic — the same seed and config
 * produce a byte-identical stats report regardless of thread
 * scheduling.
 *
 * Fault tolerance: a run may carry a schedule of injected
 * fail-stop / slowdown / recovery events (fault::AccelEvent).  Each
 * instance walks a health state machine
 *
 *     Healthy -> Degraded   (slowdown event; served via the degraded
 *                            service model, deprioritized)
 *     any     -> Ejected    (fail-stop; in-flight batch aborted and
 *                            its requests retried with capped
 *                            exponential backoff)
 *     Ejected -> Probation  (after the probation delay; must complete
 *                            a few batches to be trusted again)
 *     Probation -> Healthy  (probation successes reached)
 *
 * and the dispatcher routes to the healthiest free instance instead
 * of shedding, so capacity degrades gracefully.
 *
 * Guarded execution: admission validates the workload index, and a
 * per-batch service-time watchdog (ServeConfig::watchdogNs) kills
 * batches that exceed their budget.  A request that fails validation,
 * or takes quarantineStrikes watchdog strikes, reaches the
 * Quarantined terminal state — one poison request cannot wedge an
 * instance or starve healthy traffic (DESIGN.md §3.7).
 */

#ifndef FLEXSIM_SERVE_RUNTIME_HH
#define FLEXSIM_SERVE_RUNTIME_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_plan.hh"
#include "serve/request.hh"
#include "serve/service_model.hh"
#include "serve/worker_pool.hh"
#include "stats/stats.hh"

namespace flexsim {
namespace serve {

/** Serving-policy knobs. */
struct ServeConfig
{
    /** Number of accelerator instances in the pool. */
    unsigned poolSize = 4;
    /** Admission-queue capacity; arrivals beyond it are shed. */
    std::size_t queueCapacity = 256;
    /** Largest batch dispatched to one accelerator. */
    unsigned maxBatch = 8;
    /** Longest a head-of-line request waits for batch-mates. */
    TimeNs batchWindowNs = 2'000'000;
    /** Latency objective a completion is checked against. */
    TimeNs sloNs = 50'000'000;
    /**
     * Per-request deadline measured from arrival; a request still
     * queued past it times out and is dropped.  0 disables deadlines
     * (requests wait forever).
     */
    TimeNs deadlineNs = 0;
    /** Retry budget for requests whose batch was killed by a
     * fail-stop; past it the request is counted failed. */
    unsigned maxRetries = 3;
    /** First retry backoff; doubles per attempt. */
    TimeNs retryBackoffNs = 1'000'000;
    /** Backoff ceiling for the exponential schedule. */
    TimeNs retryBackoffCapNs = 16'000'000;
    /** Ejected -> Probation re-admission delay. */
    TimeNs probationNs = 100'000'000;
    /** Batches a probation instance must finish to be Healthy. */
    unsigned probationSuccesses = 3;
    /**
     * Per-batch service-time watchdog: a batch whose (slowdown-
     * adjusted) service time exceeds this budget is killed at
     * dispatch + watchdogNs — the instance only earns the budget as
     * busy time, and every request in the batch takes a watchdog
     * strike.  0 disables the watchdog.
     */
    TimeNs watchdogNs = 0;
    /**
     * Strikes before a request is quarantined: a request that trips
     * the watchdog this many times (or fails admission validation
     * outright) reaches the Quarantined terminal state instead of
     * being retried forever.
     */
    unsigned quarantineStrikes = 3;
};

/** Health of one accelerator instance (see file comment). */
enum class AccelHealth
{
    Healthy,
    Degraded,
    Probation,
    Ejected,
};

/** Headline numbers of one serving run. */
struct ServeReport
{
    std::uint64_t arrived = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t completed = 0;
    std::uint64_t batches = 0;
    std::uint64_t sloViolations = 0;
    /** Requests dropped because their deadline expired in queue. */
    std::uint64_t timedOut = 0;
    /** Requests dropped after exhausting their retry budget. */
    std::uint64_t failed = 0;
    /** Re-dispatch attempts caused by fail-stop aborts. */
    std::uint64_t retries = 0;
    /** Fail-stop ejections applied to pool instances. */
    std::uint64_t ejections = 0;
    /** Ejected instances re-admitted on probation. */
    std::uint64_t readmissions = 0;
    /** Requests served by a degraded or probation instance. */
    std::uint64_t degradedReroutes = 0;
    /** Requests quarantined: invalid at admission or repeatedly
     * tripping the service-time watchdog. */
    std::uint64_t quarantined = 0;
    /** Batches killed by the service-time watchdog. */
    std::uint64_t watchdogTrips = 0;
    /** First arrival to last completion. */
    TimeNs makespanNs = 0;
    double p50LatencyMs = 0.0;
    double p95LatencyMs = 0.0;
    double p99LatencyMs = 0.0;
    double meanLatencyMs = 0.0;
    /** Completions per second of makespan. */
    double throughputRps = 0.0;
    /** Busy fraction of each accelerator instance. */
    std::vector<double> utilization;

    double
    shedRate() const
    {
        return statistics::safeRatio(static_cast<double>(shed),
                                     static_cast<double>(arrived));
    }
};

/**
 * One serving run over a pool of identical accelerator instances.
 *
 * A runtime is single-shot: construct, run(), read the report or
 * dump the stats.  The service models must outlive the runtime.
 */
class ServeRuntime
{
  public:
    /**
     * @param service  healthy-instance service-time table
     * @param config   serving-policy knobs
     * @param faultEvents injected fail-stop / slowdown / recovery
     *                 schedule (any order; sorted internally)
     * @param degradedService optional table for Degraded instances —
     *                 typically the same architecture compiled for
     *                 the fault plan's surviving geometry; falls back
     *                 to @p service when null
     */
    ServeRuntime(const ServiceTimeModel &service,
                 const ServeConfig &config,
                 std::vector<fault::AccelEvent> faultEvents = {},
                 const ServiceTimeModel *degradedService = nullptr);

    ServeRuntime(const ServeRuntime &) = delete;
    ServeRuntime &operator=(const ServeRuntime &) = delete;

    /** Serve @p requests (sorted by arrival time) to completion. */
    ServeReport run(const std::vector<InferenceRequest> &requests);

    /** Render the full stats report (stable across equal-seed runs). */
    void dumpStats(std::ostream &os) const;

    const statistics::StatGroup &stats() const { return stats_; }

  private:
    /** Per-instance busy/health state and stats subtree. */
    struct AccelInstance
    {
        AccelInstance(statistics::StatGroup *parent,
                      const std::string &name,
                      const TimeNs &makespan_ns);

        bool busy = false;
        AccelHealth health = AccelHealth::Healthy;
        /** Service-time multiplier from slowdown events. */
        double slowFactor = 1.0;
        /** Batches finished since entering Probation. */
        unsigned probationWins = 0;
        /** When an Ejected instance re-enters Probation. */
        TimeNs readmitAtNs = 0;
        statistics::StatGroup group;
        statistics::Scalar busyNs;
        statistics::Scalar batches;
        statistics::Scalar requests;
        statistics::Formula utilization;
    };

    /** An admitted request waiting to be dispatched (or retried). */
    struct QueuedRequest
    {
        InferenceRequest req;
        /** Dispatch attempts so far (0 = never dispatched). */
        unsigned attempts = 0;
        /** Earliest dispatch time (retry backoff). */
        TimeNs readyNs = 0;
        /** Absolute drop-dead time (kNever when disabled). */
        TimeNs deadlineNs = 0;
        /** Service-time watchdog trips charged to this request. */
        unsigned wdStrikes = 0;
    };

    const ServiceTimeModel &service_;
    const ServiceTimeModel *degraded_;
    ServeConfig config_;
    std::vector<fault::AccelEvent> events_;
    WorkerPool workers_;

    // --- simulation state -------------------------------------------------
    std::deque<QueuedRequest> queue_;
    std::vector<std::unique_ptr<AccelInstance>> accels_;
    TimeNs makespanNs_ = 0;
    bool ran_ = false;

    // --- statistics -------------------------------------------------------
    statistics::StatGroup stats_;
    statistics::Scalar arrived_;
    statistics::Scalar admitted_;
    statistics::Scalar shed_;
    statistics::Scalar completed_;
    statistics::Scalar batches_;
    statistics::Scalar sloViolations_;
    statistics::Scalar timeouts_;
    statistics::Scalar failures_;
    statistics::Scalar retries_;
    statistics::Scalar faultEvents_;
    statistics::Scalar ejections_;
    statistics::Scalar readmissions_;
    statistics::Scalar degradedReroutes_;
    statistics::Scalar quarantined_;
    statistics::Scalar watchdogTrips_;
    statistics::Scalar makespanStat_;
    statistics::Formula throughput_;
    statistics::Formula shedRate_;
    statistics::Formula sloViolationRate_;
    statistics::Formula meanBatchSize_;
    statistics::Distribution latencyMs_;
    statistics::Distribution queueWaitMs_;
    statistics::Distribution queueDepth_;
    statistics::Distribution batchSize_;
};

} // namespace serve
} // namespace flexsim

#endif // FLEXSIM_SERVE_RUNTIME_HH
