/**
 * @file
 * The inference-serving runtime.
 *
 * Requests flow arrival -> admission -> batch -> dispatch -> stats:
 * a bounded admission queue sheds overflow, a batcher groups
 * consecutive same-workload requests (up to a maximum batch, waiting
 * at most a batching window), and a pool of simulated accelerator
 * instances serves batches with roofline-derived service times.
 *
 * Execution is a virtual-time event loop: the coordinator advances
 * time over arrival / completion / batch-window events, and hands
 * every batch evaluation to a WorkerPool of real threads.  Because
 * service times are pure functions and the coordinator joins each
 * dispatch round in submission order before advancing time, the run
 * is deterministic — the same seed and config produce a byte-identical
 * stats report regardless of thread scheduling.
 */

#ifndef FLEXSIM_SERVE_RUNTIME_HH
#define FLEXSIM_SERVE_RUNTIME_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "serve/request.hh"
#include "serve/service_model.hh"
#include "serve/worker_pool.hh"
#include "stats/stats.hh"

namespace flexsim {
namespace serve {

/** Serving-policy knobs. */
struct ServeConfig
{
    /** Number of accelerator instances in the pool. */
    unsigned poolSize = 4;
    /** Admission-queue capacity; arrivals beyond it are shed. */
    std::size_t queueCapacity = 256;
    /** Largest batch dispatched to one accelerator. */
    unsigned maxBatch = 8;
    /** Longest a head-of-line request waits for batch-mates. */
    TimeNs batchWindowNs = 2'000'000;
    /** Latency objective a completion is checked against. */
    TimeNs sloNs = 50'000'000;
};

/** Headline numbers of one serving run. */
struct ServeReport
{
    std::uint64_t arrived = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t completed = 0;
    std::uint64_t batches = 0;
    std::uint64_t sloViolations = 0;
    /** First arrival to last completion. */
    TimeNs makespanNs = 0;
    double p50LatencyMs = 0.0;
    double p95LatencyMs = 0.0;
    double p99LatencyMs = 0.0;
    double meanLatencyMs = 0.0;
    /** Completions per second of makespan. */
    double throughputRps = 0.0;
    /** Busy fraction of each accelerator instance. */
    std::vector<double> utilization;

    double
    shedRate() const
    {
        return arrived > 0
                   ? static_cast<double>(shed) /
                         static_cast<double>(arrived)
                   : 0.0;
    }
};

/**
 * One serving run over a pool of identical accelerator instances.
 *
 * A runtime is single-shot: construct, run(), read the report or
 * dump the stats.  The ServiceTimeModel must outlive the runtime.
 */
class ServeRuntime
{
  public:
    ServeRuntime(const ServiceTimeModel &service,
                 const ServeConfig &config);

    ServeRuntime(const ServeRuntime &) = delete;
    ServeRuntime &operator=(const ServeRuntime &) = delete;

    /** Serve @p requests (sorted by arrival time) to completion. */
    ServeReport run(const std::vector<InferenceRequest> &requests);

    /** Render the full stats report (stable across equal-seed runs). */
    void dumpStats(std::ostream &os) const;

    const statistics::StatGroup &stats() const { return stats_; }

  private:
    /** Per-instance busy state and stats subtree. */
    struct AccelInstance
    {
        AccelInstance(statistics::StatGroup *parent,
                      const std::string &name,
                      const TimeNs &makespan_ns);

        bool busy = false;
        statistics::StatGroup group;
        statistics::Scalar busyNs;
        statistics::Scalar batches;
        statistics::Scalar requests;
        statistics::Formula utilization;
    };

    const ServiceTimeModel &service_;
    ServeConfig config_;
    WorkerPool workers_;

    // --- simulation state -------------------------------------------------
    std::deque<InferenceRequest> queue_;
    std::vector<std::unique_ptr<AccelInstance>> accels_;
    TimeNs makespanNs_ = 0;
    bool ran_ = false;

    // --- statistics -------------------------------------------------------
    statistics::StatGroup stats_;
    statistics::Scalar arrived_;
    statistics::Scalar admitted_;
    statistics::Scalar shed_;
    statistics::Scalar completed_;
    statistics::Scalar batches_;
    statistics::Scalar sloViolations_;
    statistics::Scalar makespanStat_;
    statistics::Formula throughput_;
    statistics::Formula shedRate_;
    statistics::Formula sloViolationRate_;
    statistics::Formula meanBatchSize_;
    statistics::Distribution latencyMs_;
    statistics::Distribution queueWaitMs_;
    statistics::Distribution queueDepth_;
    statistics::Distribution batchSize_;
};

} // namespace serve
} // namespace flexsim

#endif // FLEXSIM_SERVE_RUNTIME_HH
