/**
 * @file
 * Batch service times derived from the accelerator roofline.
 *
 * The serving runtime never re-derives timing: it asks the existing
 * analytic models (systolic / 2D-mapping / tiling / FlexFlow) for one
 * LayerResult per layer and overlaps compute with DRAM traffic via
 * arch/system_timing.hh, so serving numbers stay consistent with the
 * paper-calibrated engine numbers.  Batching amortizes the kernel
 * stream: a batch of B frames fetches weights once and inputs/outputs
 * B times (see batchOverlapTiming).
 */

#ifndef FLEXSIM_SERVE_SERVICE_MODEL_HH
#define FLEXSIM_SERVE_SERVICE_MODEL_HH

#include <string>
#include <vector>

#include "arch/accelerator.hh"
#include "arch/system_timing.hh"
#include "nn/layer_spec.hh"
#include "serve/request.hh"

namespace flexsim {
namespace serve {

/**
 * Precomputed per-workload service-time table.
 *
 * Construction runs the analytic model once per layer; queries are
 * cheap, thread-safe (const), and deterministic — worker threads call
 * batchServiceNs() concurrently.
 */
class ServiceTimeModel
{
  public:
    /**
     * @param model    the accelerator architecture serving the pool
     * @param workloads the workload set requests index into
     * @param dram_words_per_cycle DMA bandwidth (16-bit words/cycle)
     * @param freq_ghz engine clock (1 GHz makes cycles == ns)
     */
    ServiceTimeModel(const AcceleratorModel &model,
                     std::vector<NetworkSpec> workloads,
                     double dram_words_per_cycle,
                     double freq_ghz = 1.0);

    std::size_t numWorkloads() const { return workloads_.size(); }

    const std::string &workloadName(int workload) const;

    /** Architecture name serving this table. */
    const std::string &archName() const { return archName_; }

    /** Wall-clock ns to serve a batch of @p batch equal requests. */
    TimeNs batchServiceNs(int workload, unsigned batch) const;

    /** Single-frame service time (batch of one). */
    TimeNs frameServiceNs(int workload) const
    {
        return batchServiceNs(workload, 1);
    }

    /** Per-layer single-frame roofline decomposition. */
    const std::vector<SystemTiming> &layerTimings(int workload) const;

  private:
    struct LayerEntry
    {
        LayerResult result;
        WordCount kernelWords = 0;
    };

    struct WorkloadEntry
    {
        std::string name;
        std::vector<LayerEntry> layers;
        std::vector<SystemTiming> frameTimings;
    };

    const WorkloadEntry &entry(int workload) const;

    std::string archName_;
    std::vector<WorkloadEntry> workloads_;
    double wordsPerCycle_;
    double freqGhz_;
};

} // namespace serve
} // namespace flexsim

#endif // FLEXSIM_SERVE_SERVICE_MODEL_HH
