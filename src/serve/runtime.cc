#include "serve/runtime.hh"

#include <algorithm>
#include <future>
#include <limits>
#include <ostream>
#include <queue>

#include "common/logging.hh"

namespace flexsim {
namespace serve {

namespace {

constexpr TimeNs kNever = std::numeric_limits<TimeNs>::max();

/** One batch in service, waiting for its virtual completion time. */
struct Completion
{
    TimeNs timeNs = 0;
    /** Dispatch sequence number: ties break deterministically. */
    std::uint64_t seq = 0;
    unsigned accel = 0;
    TimeNs dispatchNs = 0;
    std::vector<InferenceRequest> batch;
};

struct CompletionLater
{
    bool
    operator()(const Completion &a, const Completion &b) const
    {
        if (a.timeNs != b.timeNs)
            return a.timeNs > b.timeNs;
        return a.seq > b.seq;
    }
};

using CompletionQueue =
    std::priority_queue<Completion, std::vector<Completion>,
                        CompletionLater>;

} // namespace

ServeRuntime::AccelInstance::AccelInstance(statistics::StatGroup *parent,
                                           const std::string &name,
                                           const TimeNs &makespan_ns)
    : group(parent, name)
{
    busyNs.init(&group, "busyNs", "virtual ns spent serving batches");
    batches.init(&group, "batches", "batches served by this instance");
    requests.init(&group, "requests",
                  "requests served by this instance");
    utilization.init(&group, "utilization",
                     "busy fraction of the run's makespan",
                     [this, &makespan_ns] {
                         return makespan_ns > 0
                                    ? busyNs.value() /
                                          static_cast<double>(
                                              makespan_ns)
                                    : 0.0;
                     });
}

ServeRuntime::ServeRuntime(const ServiceTimeModel &service,
                           const ServeConfig &config)
    : service_(service), config_(config), workers_(config.poolSize),
      stats_("serve")
{
    flexsim_assert(config_.poolSize > 0,
                   "serving pool needs at least one accelerator");
    flexsim_assert(config_.queueCapacity > 0,
                   "admission queue needs capacity");
    flexsim_assert(config_.maxBatch > 0,
                   "maximum batch must be at least one");

    arrived_.init(&stats_, "requestsArrived",
                  "requests offered to the runtime");
    admitted_.init(&stats_, "requestsAdmitted",
                   "requests accepted into the queue");
    shed_.init(&stats_, "requestsShed",
               "requests rejected by admission control");
    completed_.init(&stats_, "requestsCompleted",
                    "requests served to completion");
    batches_.init(&stats_, "batchesDispatched",
                  "batches handed to the pool");
    sloViolations_.init(&stats_, "sloViolations",
                        "completions over the latency SLO");
    makespanStat_.init(&stats_, "makespanNs",
                       "first arrival to last completion");
    throughput_.init(&stats_, "throughputRps",
                     "completions per second of makespan", [this] {
                         return makespanNs_ > 0
                                    ? completed_.value() * 1e9 /
                                          static_cast<double>(
                                              makespanNs_)
                                    : 0.0;
                     });
    shedRate_.init(&stats_, "shedRate",
                   "shed fraction of offered requests", [this] {
                       return arrived_.value() > 0
                                  ? shed_.value() / arrived_.value()
                                  : 0.0;
                   });
    sloViolationRate_.init(&stats_, "sloViolationRate",
                           "violating fraction of completions",
                           [this] {
                               return completed_.value() > 0
                                          ? sloViolations_.value() /
                                                completed_.value()
                                          : 0.0;
                           });
    meanBatchSize_.init(&stats_, "meanBatchSize",
                        "requests per dispatched batch", [this] {
                            return batches_.value() > 0
                                       ? completed_.value() /
                                             batches_.value()
                                       : 0.0;
                        });
    latencyMs_.init(&stats_, "latencyMs",
                    "arrival-to-completion latency (ms)");
    queueWaitMs_.init(&stats_, "queueWaitMs",
                      "arrival-to-dispatch wait (ms)");
    queueDepth_.init(&stats_, "queueDepth",
                     "admission-queue depth at each arrival");
    batchSize_.init(&stats_, "batchSize",
                    "requests per batch at dispatch");

    for (unsigned i = 0; i < config_.poolSize; ++i) {
        accels_.push_back(std::make_unique<AccelInstance>(
            &stats_, "accel" + std::to_string(i), makespanNs_));
    }
}

ServeReport
ServeRuntime::run(const std::vector<InferenceRequest> &requests)
{
    flexsim_assert(!ran_, "a ServeRuntime instance is single-shot");
    ran_ = true;

    CompletionQueue completions;
    std::uint64_t seq = 0;
    std::size_t next = 0;
    TimeNs now = 0;
    TimeNs last_completion = 0;

    auto first_free = [&]() -> int {
        for (std::size_t i = 0; i < accels_.size(); ++i) {
            if (!accels_[i]->busy)
                return static_cast<int>(i);
        }
        return -1;
    };

    auto admit = [&](const InferenceRequest &request) {
        ++arrived_;
        if (queue_.size() >= config_.queueCapacity) {
            ++shed_;
            return;
        }
        ++admitted_;
        queue_.push_back(request);
        queueDepth_.sample(static_cast<double>(queue_.size()));
    };

    auto finish = [&](const Completion &completion) {
        AccelInstance &accel = *accels_[completion.accel];
        accel.busy = false;
        accel.requests += static_cast<double>(completion.batch.size());
        for (const InferenceRequest &request : completion.batch) {
            const TimeNs latency =
                completion.timeNs - request.arrivalNs;
            const TimeNs wait =
                completion.dispatchNs - request.arrivalNs;
            latencyMs_.sample(static_cast<double>(latency) / 1e6);
            queueWaitMs_.sample(static_cast<double>(wait) / 1e6);
            if (latency > config_.sloNs)
                ++sloViolations_;
            ++completed_;
        }
        last_completion = std::max(last_completion, completion.timeNs);
    };

    // Dispatch every ready batch onto every free accelerator.  Batch
    // evaluation (the roofline query) runs on the worker threads; the
    // coordinator joins the round in submission order, which keeps
    // virtual time deterministic under any thread interleaving.
    auto dispatch_ready = [&](bool no_more_arrivals) {
        struct Pending
        {
            unsigned accel;
            std::vector<InferenceRequest> batch;
            std::future<TimeNs> serviceNs;
        };
        std::vector<Pending> round;
        while (!queue_.empty()) {
            const int accel = first_free();
            if (accel < 0)
                break;
            const InferenceRequest head = queue_.front();
            std::size_t compatible = 0;
            for (const InferenceRequest &request : queue_) {
                if (request.workload == head.workload)
                    ++compatible;
                if (compatible >= config_.maxBatch)
                    break;
            }
            const bool ready =
                compatible >= config_.maxBatch || no_more_arrivals ||
                now >= head.arrivalNs + config_.batchWindowNs;
            if (!ready)
                break;

            Pending pending;
            pending.accel = static_cast<unsigned>(accel);
            for (auto it = queue_.begin();
                 it != queue_.end() &&
                 pending.batch.size() < config_.maxBatch;) {
                if (it->workload == head.workload) {
                    pending.batch.push_back(*it);
                    it = queue_.erase(it);
                } else {
                    ++it;
                }
            }
            accels_[pending.accel]->busy = true;

            auto promise = std::make_shared<std::promise<TimeNs>>();
            pending.serviceNs = promise->get_future();
            const int workload = head.workload;
            const unsigned batch_size =
                static_cast<unsigned>(pending.batch.size());
            workers_.submit([this, promise, workload, batch_size] {
                promise->set_value(
                    service_.batchServiceNs(workload, batch_size));
            });
            round.push_back(std::move(pending));
        }
        for (Pending &pending : round) {
            const TimeNs service = pending.serviceNs.get();
            Completion completion;
            completion.timeNs = now + service;
            completion.seq = seq++;
            completion.accel = pending.accel;
            completion.dispatchNs = now;
            completion.batch = std::move(pending.batch);

            AccelInstance &accel = *accels_[completion.accel];
            accel.busyNs += static_cast<double>(service);
            ++accel.batches;
            ++batches_;
            batchSize_.sample(
                static_cast<double>(completion.batch.size()));
            completions.push(std::move(completion));
        }
    };

    while (true) {
        const TimeNs t_arrival =
            next < requests.size() ? requests[next].arrivalNs : kNever;
        const TimeNs t_completion =
            completions.empty() ? kNever : completions.top().timeNs;
        // The batching window only matters while an instance is free
        // to act on its expiry.
        TimeNs t_window = kNever;
        if (!queue_.empty() && first_free() >= 0) {
            t_window =
                queue_.front().arrivalNs + config_.batchWindowNs;
        }
        const TimeNs t_next =
            std::min({t_arrival, t_completion, t_window});
        if (t_next == kNever)
            break;
        now = std::max(now, t_next);

        while (!completions.empty() &&
               completions.top().timeNs <= now) {
            finish(completions.top());
            completions.pop();
        }
        while (next < requests.size() &&
               requests[next].arrivalNs <= now) {
            admit(requests[next]);
            ++next;
        }
        dispatch_ready(next >= requests.size());
    }

    makespanNs_ = std::max(last_completion, now);
    makespanStat_ = static_cast<double>(makespanNs_);

    ServeReport report;
    report.arrived = static_cast<std::uint64_t>(arrived_.value());
    report.admitted = static_cast<std::uint64_t>(admitted_.value());
    report.shed = static_cast<std::uint64_t>(shed_.value());
    report.completed =
        static_cast<std::uint64_t>(completed_.value());
    report.batches = static_cast<std::uint64_t>(batches_.value());
    report.sloViolations =
        static_cast<std::uint64_t>(sloViolations_.value());
    report.makespanNs = makespanNs_;
    report.p50LatencyMs = latencyMs_.percentile(0.50);
    report.p95LatencyMs = latencyMs_.percentile(0.95);
    report.p99LatencyMs = latencyMs_.percentile(0.99);
    report.meanLatencyMs = latencyMs_.mean();
    report.throughputRps = throughput_.value();
    for (const auto &accel : accels_)
        report.utilization.push_back(accel->utilization.value());
    return report;
}

void
ServeRuntime::dumpStats(std::ostream &os) const
{
    stats_.dump(os);
}

} // namespace serve
} // namespace flexsim
