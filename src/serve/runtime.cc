#include "serve/runtime.hh"

#include <algorithm>
#include <future>
#include <limits>
#include <ostream>

#include "common/logging.hh"

namespace flexsim {
namespace serve {

namespace {

constexpr TimeNs kNever = std::numeric_limits<TimeNs>::max();

} // namespace

ServeRuntime::AccelInstance::AccelInstance(statistics::StatGroup *parent,
                                           const std::string &name,
                                           const TimeNs &makespan_ns)
    : group(parent, name)
{
    busyNs.init(&group, "busyNs", "virtual ns spent serving batches");
    batches.init(&group, "batches", "batches served by this instance");
    requests.init(&group, "requests",
                  "requests served by this instance");
    utilization.init(&group, "utilization",
                     "busy fraction of the run's makespan",
                     [this, &makespan_ns] {
                         return statistics::safeRatio(
                             busyNs.value(),
                             static_cast<double>(makespan_ns));
                     });
}

ServeRuntime::ServeRuntime(const ServiceTimeModel &service,
                           const ServeConfig &config,
                           std::vector<fault::AccelEvent> faultEvents,
                           const ServiceTimeModel *degradedService)
    : service_(service), degraded_(degradedService), config_(config),
      events_(std::move(faultEvents)), workers_(config.poolSize),
      stats_("serve")
{
    flexsim_assert(config_.poolSize > 0,
                   "serving pool needs at least one accelerator");
    flexsim_assert(config_.queueCapacity > 0,
                   "admission queue needs capacity");
    flexsim_assert(config_.maxBatch > 0,
                   "maximum batch must be at least one");
    flexsim_assert(config_.retryBackoffNs > 0 &&
                       config_.retryBackoffCapNs >=
                           config_.retryBackoffNs,
                   "retry backoff schedule is inconsistent");
    flexsim_assert(config_.quarantineStrikes > 0,
                   "quarantine needs at least one strike");
    for (const fault::AccelEvent &event : events_) {
        flexsim_assert(event.accel < config_.poolSize,
                       "fault event targets accelerator ", event.accel,
                       " outside the pool of ", config_.poolSize);
        flexsim_assert(event.kind !=
                               fault::AccelEvent::Kind::Slowdown ||
                           event.factor >= 1.0,
                       "slowdown factor must be >= 1");
    }
    // Stable sort: simultaneous events keep their given order.
    std::stable_sort(events_.begin(), events_.end(),
                     [](const fault::AccelEvent &a,
                        const fault::AccelEvent &b) {
                         return a.atNs < b.atNs;
                     });

    arrived_.init(&stats_, "requestsArrived",
                  "requests offered to the runtime");
    admitted_.init(&stats_, "requestsAdmitted",
                   "requests accepted into the queue");
    shed_.init(&stats_, "requestsShed",
               "requests rejected by admission control");
    completed_.init(&stats_, "requestsCompleted",
                    "requests served to completion");
    batches_.init(&stats_, "batchesDispatched",
                  "batches handed to the pool");
    sloViolations_.init(&stats_, "sloViolations",
                        "completions over the latency SLO");
    timeouts_.init(&stats_, "requestsTimedOut",
                   "requests dropped at their queue deadline");
    failures_.init(&stats_, "requestsFailed",
                   "requests dropped after exhausting retries");
    retries_.init(&stats_, "retriesDispatched",
                  "re-dispatch attempts after fail-stop aborts");
    faultEvents_.init(&stats_, "faultEventsApplied",
                      "injected accelerator events applied");
    ejections_.init(&stats_, "ejections",
                    "fail-stop ejections from the pool");
    readmissions_.init(&stats_, "readmissions",
                       "ejected instances re-admitted on probation");
    degradedReroutes_.init(
        &stats_, "degradedReroutes",
        "requests served by degraded/probation instances");
    quarantined_.init(&stats_, "requestsQuarantined",
                      "poison requests routed to quarantine");
    watchdogTrips_.init(&stats_, "watchdogTrips",
                        "batches killed by the service-time watchdog");
    makespanStat_.init(&stats_, "makespanNs",
                       "first arrival to last completion");
    throughput_.init(&stats_, "throughputRps",
                     "completions per second of makespan", [this] {
                         return statistics::safeRatio(
                             completed_.value() * 1e9,
                             static_cast<double>(makespanNs_));
                     });
    shedRate_.init(&stats_, "shedRate",
                   "shed fraction of offered requests", [this] {
                       return statistics::safeRatio(shed_.value(),
                                                    arrived_.value());
                   });
    sloViolationRate_.init(&stats_, "sloViolationRate",
                           "violating fraction of completions",
                           [this] {
                               return statistics::safeRatio(
                                   sloViolations_.value(),
                                   completed_.value());
                           });
    meanBatchSize_.init(&stats_, "meanBatchSize",
                        "requests per dispatched batch", [this] {
                            return statistics::safeRatio(
                                completed_.value(), batches_.value());
                        });
    latencyMs_.init(&stats_, "latencyMs",
                    "arrival-to-completion latency (ms)");
    queueWaitMs_.init(&stats_, "queueWaitMs",
                      "arrival-to-dispatch wait (ms)");
    queueDepth_.init(&stats_, "queueDepth",
                     "admission-queue depth at each arrival");
    batchSize_.init(&stats_, "batchSize",
                    "requests per batch at dispatch");

    for (unsigned i = 0; i < config_.poolSize; ++i) {
        accels_.push_back(std::make_unique<AccelInstance>(
            &stats_, "accel" + std::to_string(i), makespanNs_));
    }
}

ServeReport
ServeRuntime::run(const std::vector<InferenceRequest> &requests)
{
    flexsim_assert(!ran_, "a ServeRuntime instance is single-shot");
    ran_ = true;

    /** One batch in service, waiting for its virtual completion. */
    struct Completion
    {
        TimeNs timeNs = 0;
        /** Dispatch sequence number: ties break deterministically. */
        std::uint64_t seq = 0;
        unsigned accel = 0;
        TimeNs dispatchNs = 0;
        /** Watchdog kill: the batch is aborted at timeNs instead of
         * completing (its requests strike or quarantine). */
        bool wdKilled = false;
        std::vector<QueuedRequest> batch;
    };

    // In-flight batches (at most one per instance); kept as a flat
    // vector so a fail-stop can surgically abort its instance's batch.
    std::vector<Completion> inflight;
    std::uint64_t seq = 0;
    std::size_t next = 0;
    std::size_t next_event = 0;
    TimeNs now = 0;
    TimeNs last_completion = 0;

    auto backoff = [&](unsigned attempts) -> TimeNs {
        TimeNs delay = config_.retryBackoffNs;
        for (unsigned i = 1;
             i < attempts && delay < config_.retryBackoffCapNs; ++i)
            delay *= 2;
        return std::min(delay, config_.retryBackoffCapNs);
    };

    // The healthiest free instance (never an Ejected one); ties go to
    // the lowest index, which keeps routing deterministic.
    auto pick_accel = [&]() -> int {
        int best = -1;
        int best_rank = 3;
        for (std::size_t i = 0; i < accels_.size(); ++i) {
            const AccelInstance &accel = *accels_[i];
            if (accel.busy || accel.health == AccelHealth::Ejected)
                continue;
            const int rank =
                accel.health == AccelHealth::Healthy    ? 0
                : accel.health == AccelHealth::Degraded ? 1
                                                        : 2;
            if (rank < best_rank) {
                best_rank = rank;
                best = static_cast<int>(i);
            }
        }
        return best;
    };

    auto admit = [&](const InferenceRequest &request) {
        ++arrived_;
        // Admission validation: a workload index outside the service
        // table is poison and goes straight to quarantine — it must
        // never reach a service-model lookup.
        if (request.workload < 0 ||
            static_cast<std::size_t>(request.workload) >=
                service_.numWorkloads()) {
            ++quarantined_;
            return;
        }
        if (queue_.size() >= config_.queueCapacity) {
            ++shed_;
            return;
        }
        ++admitted_;
        QueuedRequest entry;
        entry.req = request;
        entry.readyNs = request.arrivalNs;
        entry.deadlineNs = config_.deadlineNs > 0
                               ? request.arrivalNs + config_.deadlineNs
                               : kNever;
        queue_.push_back(entry);
        queueDepth_.sample(static_cast<double>(queue_.size()));
    };

    // A batch the watchdog killed at its budget: the instance is
    // free again (having earned only the budget as busy time) and
    // every request either takes a strike and retries with backoff,
    // or — at the strike limit — is quarantined.  Requeueing in
    // reverse keeps queue order deterministic (same as fail-stops).
    auto finish_killed = [&](const Completion &completion) {
        AccelInstance &accel = *accels_[completion.accel];
        accel.busy = false;
        ++watchdogTrips_;
        for (auto rit = completion.batch.rbegin();
             rit != completion.batch.rend(); ++rit) {
            QueuedRequest entry = *rit;
            ++entry.wdStrikes;
            if (entry.wdStrikes >= config_.quarantineStrikes) {
                ++quarantined_;
                continue;
            }
            entry.readyNs =
                completion.timeNs + backoff(entry.wdStrikes);
            queue_.push_front(entry);
        }
    };

    auto finish = [&](const Completion &completion) {
        AccelInstance &accel = *accels_[completion.accel];
        accel.busy = false;
        accel.requests += static_cast<double>(completion.batch.size());
        for (const QueuedRequest &entry : completion.batch) {
            const TimeNs latency =
                completion.timeNs - entry.req.arrivalNs;
            const TimeNs wait =
                completion.dispatchNs - entry.req.arrivalNs;
            latencyMs_.sample(static_cast<double>(latency) / 1e6);
            queueWaitMs_.sample(static_cast<double>(wait) / 1e6);
            if (latency > config_.sloNs)
                ++sloViolations_;
            ++completed_;
        }
        if (accel.health == AccelHealth::Probation &&
            ++accel.probationWins >= config_.probationSuccesses) {
            accel.health = AccelHealth::Healthy;
        }
        last_completion = std::max(last_completion, completion.timeNs);
    };

    // Kill the in-flight batch of a fail-stopped instance: the
    // instance only earned the busy time up to the crash, and every
    // request goes back to the queue head with backoff (or is failed
    // once its retry budget is spent).
    auto abort_inflight = [&](unsigned accel_idx) {
        for (auto it = inflight.begin(); it != inflight.end(); ++it) {
            if (it->accel != accel_idx)
                continue;
            AccelInstance &accel = *accels_[accel_idx];
            accel.busyNs +=
                static_cast<double>(now - it->dispatchNs) -
                static_cast<double>(it->timeNs - it->dispatchNs);
            accel.busy = false;
            for (auto rit = it->batch.rbegin();
                 rit != it->batch.rend(); ++rit) {
                QueuedRequest entry = *rit;
                ++entry.attempts;
                if (entry.attempts > config_.maxRetries) {
                    ++failures_;
                    continue;
                }
                entry.readyNs = now + backoff(entry.attempts);
                ++retries_;
                queue_.push_front(entry);
            }
            inflight.erase(it);
            return;
        }
    };

    auto apply_event = [&](const fault::AccelEvent &event) {
        ++faultEvents_;
        AccelInstance &accel = *accels_[event.accel];
        switch (event.kind) {
          case fault::AccelEvent::Kind::FailStop:
            abort_inflight(event.accel);
            if (accel.health != AccelHealth::Ejected)
                ++ejections_;
            accel.health = AccelHealth::Ejected;
            accel.readmitAtNs = now + config_.probationNs;
            break;
          case fault::AccelEvent::Kind::Slowdown:
            accel.slowFactor = event.factor;
            if (accel.health == AccelHealth::Healthy ||
                accel.health == AccelHealth::Probation) {
                accel.health = AccelHealth::Degraded;
            }
            break;
          case fault::AccelEvent::Kind::Recover:
            accel.slowFactor = 1.0;
            if (accel.health == AccelHealth::Degraded) {
                accel.health = AccelHealth::Healthy;
            } else if (accel.health == AccelHealth::Ejected) {
                accel.health = AccelHealth::Probation;
                accel.probationWins = 0;
                ++readmissions_;
            }
            break;
        }
    };

    // Dispatch every ready batch onto the healthiest free instances.
    // Batch evaluation (the roofline query) runs on the worker
    // threads; the coordinator joins the round in submission order,
    // which keeps virtual time deterministic under any interleaving.
    auto dispatch_ready = [&](bool no_more_arrivals) {
        struct Pending
        {
            unsigned accel;
            double slow;
            std::vector<QueuedRequest> batch;
            std::future<TimeNs> serviceNs;
        };
        std::vector<Pending> round;
        while (true) {
            const int accel_idx = pick_accel();
            if (accel_idx < 0)
                break;
            // Head of line = oldest entry whose backoff has elapsed.
            auto head = std::find_if(
                queue_.begin(), queue_.end(),
                [&](const QueuedRequest &entry) {
                    return entry.readyNs <= now;
                });
            if (head == queue_.end())
                break;
            const int workload = head->req.workload;
            std::size_t compatible = 0;
            for (const QueuedRequest &entry : queue_) {
                if (entry.readyNs <= now &&
                    entry.req.workload == workload)
                    ++compatible;
                if (compatible >= config_.maxBatch)
                    break;
            }
            const bool ready =
                compatible >= config_.maxBatch || no_more_arrivals ||
                now >= head->req.arrivalNs + config_.batchWindowNs;
            if (!ready)
                break;

            Pending pending;
            pending.accel = static_cast<unsigned>(accel_idx);
            for (auto it = queue_.begin();
                 it != queue_.end() &&
                 pending.batch.size() < config_.maxBatch;) {
                if (it->readyNs <= now &&
                    it->req.workload == workload) {
                    pending.batch.push_back(*it);
                    it = queue_.erase(it);
                } else {
                    ++it;
                }
            }
            AccelInstance &accel = *accels_[pending.accel];
            accel.busy = true;
            pending.slow = accel.slowFactor;
            if (accel.health != AccelHealth::Healthy) {
                degradedReroutes_ +=
                    static_cast<double>(pending.batch.size());
            }
            // Degraded instances serve with the fault-remapped table
            // when one is available (graceful degradation instead of
            // shedding); probation instances are back at full speed.
            const ServiceTimeModel *svc =
                accel.health == AccelHealth::Degraded &&
                        degraded_ != nullptr
                    ? degraded_
                    : &service_;

            auto promise = std::make_shared<std::promise<TimeNs>>();
            pending.serviceNs = promise->get_future();
            const unsigned batch_size =
                static_cast<unsigned>(pending.batch.size());
            workers_.submit([svc, promise, workload, batch_size] {
                promise->set_value(
                    svc->batchServiceNs(workload, batch_size));
            });
            round.push_back(std::move(pending));
        }
        for (Pending &pending : round) {
            TimeNs service = pending.serviceNs.get();
            if (pending.slow != 1.0) {
                service = static_cast<TimeNs>(
                    static_cast<double>(service) * pending.slow);
            }
            Completion completion;
            completion.seq = seq++;
            completion.accel = pending.accel;
            completion.dispatchNs = now;
            completion.batch = std::move(pending.batch);
            // The watchdog caps how long an instance may be held by
            // one batch: a budget overrun is killed at the budget,
            // not served to completion.
            if (config_.watchdogNs > 0 &&
                service > config_.watchdogNs) {
                completion.wdKilled = true;
                service = config_.watchdogNs;
            }
            completion.timeNs = now + service;

            AccelInstance &accel = *accels_[completion.accel];
            accel.busyNs += static_cast<double>(service);
            ++accel.batches;
            ++batches_;
            batchSize_.sample(
                static_cast<double>(completion.batch.size()));
            inflight.push_back(std::move(completion));
        }
    };

    while (true) {
        // All work drained and no arrivals left: later fault events
        // cannot affect the report, so don't let them stretch the
        // makespan.
        if (next >= requests.size() && queue_.empty() &&
            inflight.empty())
            break;
        const TimeNs t_arrival =
            next < requests.size() ? requests[next].arrivalNs : kNever;
        const TimeNs t_fault = next_event < events_.size()
                                   ? events_[next_event].atNs
                                   : kNever;
        TimeNs t_completion = kNever;
        for (const Completion &completion : inflight)
            t_completion = std::min(t_completion, completion.timeNs);
        TimeNs t_readmit = kNever;
        for (const auto &accel : accels_) {
            if (accel->health == AccelHealth::Ejected)
                t_readmit = std::min(t_readmit, accel->readmitAtNs);
        }
        TimeNs t_retry = kNever;
        TimeNs t_deadline = kNever;
        for (const QueuedRequest &entry : queue_) {
            if (entry.readyNs > now)
                t_retry = std::min(t_retry, entry.readyNs);
            t_deadline = std::min(t_deadline, entry.deadlineNs);
        }
        // The batching window only matters while an instance is free
        // to act on its expiry.
        TimeNs t_window = kNever;
        if (pick_accel() >= 0) {
            for (const QueuedRequest &entry : queue_) {
                if (entry.readyNs <= now) {
                    t_window = entry.req.arrivalNs +
                               config_.batchWindowNs;
                    break;
                }
            }
        }
        const TimeNs t_next =
            std::min({t_arrival, t_completion, t_window, t_fault,
                      t_readmit, t_retry, t_deadline});
        if (t_next == kNever)
            break;
        now = std::max(now, t_next);

        // Fixed processing order at each step keeps equal-seed runs
        // byte-identical: completions, fault events, readmissions,
        // arrivals, deadline drops, then dispatch.
        while (!inflight.empty()) {
            auto due = std::min_element(
                inflight.begin(), inflight.end(),
                [](const Completion &a, const Completion &b) {
                    return a.timeNs != b.timeNs ? a.timeNs < b.timeNs
                                                : a.seq < b.seq;
                });
            if (due->timeNs > now)
                break;
            if (due->wdKilled)
                finish_killed(*due);
            else
                finish(*due);
            inflight.erase(due);
        }
        while (next_event < events_.size() &&
               events_[next_event].atNs <= now) {
            apply_event(events_[next_event]);
            ++next_event;
        }
        for (auto &accel : accels_) {
            if (accel->health == AccelHealth::Ejected &&
                accel->readmitAtNs <= now) {
                accel->health = AccelHealth::Probation;
                accel->probationWins = 0;
                ++readmissions_;
            }
        }
        while (next < requests.size() &&
               requests[next].arrivalNs <= now) {
            admit(requests[next]);
            ++next;
        }
        for (auto it = queue_.begin(); it != queue_.end();) {
            if (it->deadlineNs <= now) {
                ++timeouts_;
                it = queue_.erase(it);
            } else {
                ++it;
            }
        }
        dispatch_ready(next >= requests.size());
    }

    flexsim_assert(queue_.empty() && inflight.empty(),
                   "serving loop exited with work stranded");
    // Every offered request reached exactly one terminal state.
    flexsim_assert(arrived_.value() ==
                       completed_.value() + shed_.value() +
                           timeouts_.value() + failures_.value() +
                           quarantined_.value(),
                   "request accounting out of balance");

    makespanNs_ = std::max(last_completion, now);
    makespanStat_ = static_cast<double>(makespanNs_);

    ServeReport report;
    report.arrived = static_cast<std::uint64_t>(arrived_.value());
    report.admitted = static_cast<std::uint64_t>(admitted_.value());
    report.shed = static_cast<std::uint64_t>(shed_.value());
    report.completed =
        static_cast<std::uint64_t>(completed_.value());
    report.batches = static_cast<std::uint64_t>(batches_.value());
    report.sloViolations =
        static_cast<std::uint64_t>(sloViolations_.value());
    report.timedOut = static_cast<std::uint64_t>(timeouts_.value());
    report.failed = static_cast<std::uint64_t>(failures_.value());
    report.retries = static_cast<std::uint64_t>(retries_.value());
    report.ejections =
        static_cast<std::uint64_t>(ejections_.value());
    report.readmissions =
        static_cast<std::uint64_t>(readmissions_.value());
    report.degradedReroutes =
        static_cast<std::uint64_t>(degradedReroutes_.value());
    report.quarantined =
        static_cast<std::uint64_t>(quarantined_.value());
    report.watchdogTrips =
        static_cast<std::uint64_t>(watchdogTrips_.value());
    report.makespanNs = makespanNs_;
    report.p50LatencyMs = latencyMs_.percentile(0.50);
    report.p95LatencyMs = latencyMs_.percentile(0.95);
    report.p99LatencyMs = latencyMs_.percentile(0.99);
    report.meanLatencyMs = latencyMs_.mean();
    report.throughputRps = throughput_.value();
    for (const auto &accel : accels_)
        report.utilization.push_back(accel->utilization.value());
    return report;
}

void
ServeRuntime::dumpStats(std::ostream &os) const
{
    stats_.dump(os);
}

} // namespace serve
} // namespace flexsim
