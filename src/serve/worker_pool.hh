/**
 * @file
 * A minimal jthread worker pool with a condition-variable work queue.
 *
 * The serving runtime dispatches batch-evaluation jobs here; workers
 * pull jobs FIFO and run them concurrently.  Shutdown rides on
 * std::jthread's stop_token — destruction requests stop, wakes every
 * worker, and joins.
 */

#ifndef FLEXSIM_SERVE_WORKER_POOL_HH
#define FLEXSIM_SERVE_WORKER_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flexsim {
namespace serve {

/** Fixed-size pool of worker threads draining a FIFO job queue. */
class WorkerPool
{
  public:
    using Job = std::function<void()>;

    /** Spawn @p num_workers threads (at least one). */
    explicit WorkerPool(unsigned num_workers);

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Stops and joins every worker; queued jobs are dropped. */
    ~WorkerPool();

    /** Enqueue @p job; a sleeping worker wakes to run it. */
    void submit(Job job);

    unsigned numWorkers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

  private:
    void workerLoop(std::stop_token stop);

    std::mutex mutex_;
    std::condition_variable_any cv_;
    std::deque<Job> jobs_;
    std::vector<std::jthread> threads_;
};

} // namespace serve
} // namespace flexsim

#endif // FLEXSIM_SERVE_WORKER_POOL_HH
