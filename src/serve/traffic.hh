/**
 * @file
 * Synthetic and replayed request-arrival processes.
 *
 * Three generators cover the load shapes a deployment sees: a Poisson
 * process (independent users), an on/off modulated Poisson process
 * (diurnal bursts, flash crowds), and a replay of explicit arrival
 * offsets (recorded traces).  All three are deterministic functions
 * of the seed, so a serving run is reproducible end to end.
 */

#ifndef FLEXSIM_SERVE_TRAFFIC_HH
#define FLEXSIM_SERVE_TRAFFIC_HH

#include <optional>
#include <string>
#include <vector>

#include "guard/error.hh"
#include "serve/request.hh"

namespace flexsim {
namespace serve {

/** Arrival-process families. */
enum class TrafficModel
{
    Poisson, ///< exponential inter-arrivals at a fixed mean rate
    Bursty,  ///< on/off modulated Poisson (burst / lull phases)
    Replay,  ///< explicit arrival offsets (trace replay)
};

/** Parse "poisson" / "bursty" / "replay" (case-insensitive). */
std::optional<TrafficModel> parseTrafficModel(const std::string &name);

/** Lower-case model name for reports. */
const char *trafficModelName(TrafficModel model);

/** Parameters of one generated request stream. */
struct TrafficConfig
{
    TrafficModel model = TrafficModel::Poisson;
    /** Mean offered load in requests per second. */
    double rps = 1000.0;
    /** Stream length in virtual nanoseconds. */
    TimeNs durationNs = 1'000'000'000;
    std::uint64_t seed = 1;
    /** Requests draw a workload index uniformly from [0, n). */
    int numWorkloads = 1;
    /** Bursty: rate multiplier while a burst is on. */
    double burstFactor = 4.0;
    /** Bursty: fraction of each period spent bursting, in (0, 1). */
    double burstFraction = 0.2;
    /** Bursty: burst cycle period. */
    TimeNs burstPeriodNs = 100'000'000;
    /** Replay: arrival offsets (ns) replayed in order; offsets past
     *  durationNs are dropped. */
    std::vector<TimeNs> replayNs;
    /** Fraction of requests emitted as poison (workload = -1): they
     *  fail admission validation and exercise the quarantine path.
     *  Drawn deterministically from the stream seed; 0 leaves the
     *  generated stream bit-identical to a pre-poison run. */
    double poisonRate = 0.0;

    /** Typed validation of an externally supplied configuration. */
    guard::Expected<void> check() const;
};

/**
 * Generate the request stream described by @p config, sorted by
 * arrival time with ids in arrival order.
 */
std::vector<InferenceRequest> generateTraffic(const TrafficConfig &config);

/**
 * Parse a replay trace: one arrival offset per line, in microseconds
 * (comments with '#' and blank lines skipped).
 */
std::vector<TimeNs> parseReplayTrace(const std::string &text);

/** Guarded parseReplayTrace: a typed Parse error instead of dying on
 * garbage lines or negative offsets. */
guard::Expected<std::vector<TimeNs>>
tryParseReplayTrace(const std::string &text);

} // namespace serve
} // namespace flexsim

#endif // FLEXSIM_SERVE_TRAFFIC_HH
