/**
 * @file
 * Inference-serving request records.
 *
 * The serving runtime works in virtual nanoseconds (at the default
 * 1 GHz engine clock one cycle is one nanosecond, so engine cycle
 * counts and wall-clock nanoseconds share a unit).  A request names a
 * workload by index into the runtime's workload set; only requests
 * for the same workload are batched together.
 */

#ifndef FLEXSIM_SERVE_REQUEST_HH
#define FLEXSIM_SERVE_REQUEST_HH

#include <cstdint>

namespace flexsim {
namespace serve {

/** Virtual time in nanoseconds. */
using TimeNs = std::uint64_t;

/**
 * The workload index traffic generators use for deliberately invalid
 * ("poison") requests.  Admission validation rejects it — and any
 * other index outside the runtime's workload set — into quarantine.
 */
constexpr int kPoisonWorkload = -1;

/** One inference request in flight. */
struct InferenceRequest
{
    /** Monotone identifier in arrival order. */
    std::uint64_t id = 0;
    /** Index into the runtime's workload set. */
    int workload = 0;
    /** Virtual arrival time. */
    TimeNs arrivalNs = 0;
};

/** Terminal state of a request. */
enum class RequestOutcome
{
    Completed,   ///< served and finished
    Shed,        ///< rejected by admission control (queue full)
    Quarantined, ///< poisoned: invalid or repeatedly tripping guards
};

} // namespace serve
} // namespace flexsim

#endif // FLEXSIM_SERVE_REQUEST_HH
